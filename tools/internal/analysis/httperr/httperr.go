// Package httperr keeps HTTP error policy centralized in internal/serve:
// handlers must reply through the shared writeError/writeJSON helpers, so
// the 400/413/429 status policy, error envelope shape, and metrics
// accounting live in one place. Flagged in packages named serve:
//
//   - http.Error and http.NotFound calls;
//   - WriteHeader with a constant status >= 400 (a naked error reply).
//
// WriteHeader with a variable, or with 2xx/3xx constants, is fine — the
// helpers themselves and streaming success paths need those.
//
// Escape hatch: //lint:ignore httperr <reason>.
package httperr

import (
	"go/ast"
	"go/constant"

	"trajmotif/tools/internal/analysis/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "httperr",
	Doc:  "serve handlers must reply through the shared error helpers, not bare http.Error/WriteHeader(>=400)",
	Run:  run,
}

// helperNames are the shared reply helpers whose bodies are allowed to
// touch the raw response writer.
var helperNames = map[string]bool{"writeError": true, "writeJSON": true}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() != "serve" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || helperNames[fd.Name.Name] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := lint.CalleeObj(pass.Info, call)
		if obj == nil {
			return true
		}
		if lint.IsPkgFunc(obj, "http", "Error") || lint.IsPkgFunc(obj, "http", "NotFound") {
			pass.Reportf(call.Pos(), "bare http.%s: reply through writeError so status policy and the error envelope stay centralized", obj.Name())
			return true
		}
		if obj.Name() == "WriteHeader" && len(call.Args) == 1 {
			if code, ok := constStatus(pass, call.Args[0]); ok && code >= 400 {
				pass.Reportf(call.Pos(), "WriteHeader(%d) outside the shared helpers: error replies must go through writeError", code)
			}
		}
		return true
	})
}

// constStatus extracts a compile-time integer status code from an
// expression, when it has one.
func constStatus(pass *lint.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
