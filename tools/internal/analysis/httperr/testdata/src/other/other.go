// Package other is not a serve package; the policy does not apply.
package other

import "net/http"

func Reply(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "fine here", http.StatusTeapot)
}
