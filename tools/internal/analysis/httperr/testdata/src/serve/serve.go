package serve

import "net/http"

type errorResponse struct{ Error string }

// The shared helpers themselves may touch the raw writer.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// Handlers replying through the helpers are the sanctioned shape.
func good(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.WriteHeader(http.StatusOK)
}

// The seeded violations: policy scattered outside the helpers.
func bareError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `bare http\.Error: reply through writeError`
}

func bareNotFound(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r) // want `bare http\.NotFound: reply through writeError`
}

func nakedLiteral(w http.ResponseWriter) {
	w.WriteHeader(500) // want `WriteHeader\(500\) outside the shared helpers`
}

func nakedConst(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadRequest) // want `WriteHeader\(400\) outside the shared helpers`
}

// Variables and success statuses are fine — streaming paths need them.
func variableStatus(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// The escape hatch.
func escaped(w http.ResponseWriter) {
	//lint:ignore httperr raw proxying path mirrors the upstream status
	w.WriteHeader(http.StatusGatewayTimeout)
}
