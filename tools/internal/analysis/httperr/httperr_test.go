package httperr_test

import (
	"testing"

	"trajmotif/tools/internal/analysis/analysistest"
	"trajmotif/tools/internal/analysis/httperr"
)

func TestHTTPErr(t *testing.T) {
	analysistest.Run(t, httperr.Analyzer, "testdata", "serve", "other")
}
