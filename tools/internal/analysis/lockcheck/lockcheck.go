// Package lockcheck enforces the repo's mutex discipline for *Locked
// methods (internal/store is the main client):
//
//  1. a method named *Locked must not lock or unlock its own receiver's
//     mutex — the name is a contract that the caller already holds it;
//  2. a call to a *Locked method must happen either inside another
//     *Locked method of the same type, or in a function that has already
//     acquired the receiver's mutex (a lexically earlier x.mu.Lock() /
//     RLock() on the same receiver variable).
//
// The caller-side check is lexical, not a true dominance analysis: an
// acquire anywhere earlier in the same enclosing function (closures
// included) satisfies it. That is deliberate — it matches how the store
// is written (lock windows with defer-unlock) and keeps the checker
// dependency-free; the escape hatch for exotic control flow is
// //lint:ignore lockcheck <reason>.
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"trajmotif/tools/internal/analysis/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc:  "*Locked methods must be called with the receiver's mutex held and must not lock it themselves",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isMutexOp reports whether obj is (sync.Mutex).Lock/Unlock or
// (sync.RWMutex).[R]Lock/[R]Unlock.
func isMutexOp(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := lint.Named(sig.Recv().Type())
	return n != nil && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

func isAcquire(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && isMutexOp(obj) && (fn.Name() == "Lock" || fn.Name() == "RLock")
}

// hasMutexField reports whether the named type's underlying struct carries
// a sync.Mutex or sync.RWMutex field (named or embedded).
func hasMutexField(n *types.Named) bool {
	s := lint.StructOf(n)
	if s == nil {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		fn := lint.Named(s.Field(i).Type())
		if fn != nil && fn.Obj().Pkg() != nil && fn.Obj().Pkg().Path() == "sync" &&
			(fn.Obj().Name() == "Mutex" || fn.Obj().Name() == "RWMutex") {
			return true
		}
	}
	return false
}

// lockedMethodOf returns the defining named type when obj is a *Locked
// method on a mutex-bearing type, else nil.
func lockedMethodOf(obj types.Object) *types.Named {
	fn, ok := obj.(*types.Func)
	if !ok || !strings.HasSuffix(fn.Name(), "Locked") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	n := lint.Named(sig.Recv().Type())
	if n == nil || !hasMutexField(n) {
		return nil
	}
	return n
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	// Is fd itself a *Locked method? Then its body runs under the lock:
	// calls to sibling *Locked methods are fine, but touching the
	// receiver's mutex is a deadlock (Lock) or a protocol break (Unlock).
	var selfType *types.Named
	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if def := pass.Info.Defs[fd.Name]; def != nil {
			selfType = lockedMethodOf(def)
		}
		if names := fd.Recv.List[0].Names; len(names) == 1 {
			recvObj = pass.Info.Defs[names[0]]
		}
	}

	// acquires collects, in source order, the variables whose mutex was
	// locked lexically before each position: rootObj -> earliest Lock pos.
	type acquire struct {
		obj types.Object
		pos int
	}
	var acquires []acquire
	holds := func(obj types.Object, before int) bool {
		for _, a := range acquires {
			if a.obj == obj && a.pos < before {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := lint.CalleeObj(pass.Info, call)
		if obj == nil {
			return true
		}

		if isMutexOp(obj) {
			root := lint.RootIdent(call.Fun)
			if root == nil {
				return true
			}
			rootObj := pass.Info.Uses[root]
			if selfType != nil && recvObj != nil && rootObj == recvObj {
				pass.Reportf(call.Pos(), "%s calls %s.%s.%s: *Locked methods run with the receiver's mutex already held",
					fd.Name.Name, root.Name, mutexFieldName(call.Fun), obj.Name())
				return true
			}
			if isAcquire(obj) && rootObj != nil {
				acquires = append(acquires, acquire{obj: rootObj, pos: int(call.Pos())})
			}
			return true
		}

		target := lockedMethodOf(obj)
		if target == nil {
			return true
		}
		// Rule 2a: calls between *Locked methods of the same type are
		// lock-neutral.
		if selfType != nil && selfType.Obj() == target.Obj() {
			return true
		}
		// Rule 2b: the receiver variable's mutex must have been acquired
		// lexically earlier in this function.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root := lint.RootIdent(sel.X)
		if root == nil {
			pass.Reportf(call.Pos(), "call to %s on a non-variable receiver: cannot verify the mutex is held", obj.Name())
			return true
		}
		rootObj := pass.Info.Uses[root]
		if rootObj == nil || !holds(rootObj, int(call.Pos())) {
			pass.Reportf(call.Pos(), "call to %s without %s.mu held: acquire the lock first or call from another *Locked method",
				obj.Name(), root.Name)
		}
		return true
	})
}

// mutexFieldName extracts the mutex field's name from a call fun like
// s.mu.Lock for the diagnostic message; best-effort.
func mutexFieldName(fun ast.Expr) string {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return "mu"
	}
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		return inner.Sel.Name
	}
	return "mu"
}
