package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) bumpLocked() { s.n++ }

// Calling a sibling *Locked method from a *Locked method is lock-neutral.
func (s *S) doubleLocked() { s.bumpLocked() }

// The canonical caller shape: acquire, defer release, call in.
func (s *S) Bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
}

// Acquiring inside a closure in the same function body also counts.
func (s *S) InClosure() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.bumpLocked()
	}
}

// A *Locked method must not touch its own receiver's mutex.
func (s *S) selfLockLocked() {
	s.mu.Lock() // want `selfLockLocked calls s\.mu\.Lock: \*Locked methods run with the receiver's mutex already held`
	s.n++
	s.mu.Unlock() // want `selfLockLocked calls s\.mu\.Unlock`
}

// Calling a *Locked method without the lock is the seeded violation.
func (s *S) Unheld() {
	s.bumpLocked() // want `call to bumpLocked without s\.mu held`
}

// The escape hatch suppresses with a reason.
func (s *S) Escaped() {
	//lint:ignore lockcheck construction-time call, no concurrent access yet
	s.bumpLocked()
}

// Locking one instance does not license calls on another.
func Cross(a, b *S) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.bumpLocked() // want `call to bumpLocked without b\.mu held`
}

// *Locked methods on mutex-free types are outside the convention.
type NoMu struct{ n int }

func (p *NoMu) addLocked() { p.n++ }

func UseNoMu(p *NoMu) { p.addLocked() }

// The shard-coordinator shape (internal/shard): a fan-out type whose
// own mutex guards routing state while each sub-store keeps its own
// lock. The coordinator's *Locked methods follow the usual contract,
// and holding the coordinator's mutex licenses only them — never a
// sub-store's *Locked methods.
type Sub struct {
	mu sync.Mutex
	n  int
}

func (s *Sub) addLocked() { s.n++ }

type Coord struct {
	mu    sync.Mutex
	subs  []*Sub
	order []int
}

func (c *Coord) dropFromOrderLocked(i int) {
	c.order = append(c.order[:i], c.order[i+1:]...)
}

func (c *Coord) Remove(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropFromOrderLocked(i)
}

// The coordinator's lock is not the sub-store's lock.
func (c *Coord) BroadcastUnheld() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sub := range c.subs {
		sub.addLocked() // want `call to addLocked without sub\.mu held`
	}
}

// The correct fan-out acquires each sub-store's own mutex.
func (c *Coord) Broadcast() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sub := range c.subs {
		sub.mu.Lock()
		sub.addLocked()
		sub.mu.Unlock()
	}
}

// An RWMutex read lock also satisfies the caller-side rule.
type R struct {
	mu sync.RWMutex
	m  map[int]int
}

func (r *R) getLocked(k int) int { return r.m[k] }

func (r *R) Get(k int) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.getLocked(k)
}
