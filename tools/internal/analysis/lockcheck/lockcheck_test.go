package lockcheck_test

import (
	"testing"

	"trajmotif/tools/internal/analysis/analysistest"
	"trajmotif/tools/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "testdata", "a")
}
