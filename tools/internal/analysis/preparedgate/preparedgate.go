// Package preparedgate enforces the exactness gate on the prepared and
// projected fast paths. geo.HaversinePrepared is only bit-identical to
// the ground distance when that distance IS the haversine, and the
// projected planar kernels are only certified when the Frame's error
// band is valid — so every call into those paths must be dominated by a
// geo.IsHaversine(df) or Frame.OK() check.
//
// Targets (flagged when un-gated):
//   - geo.HaversinePrepared;
//   - geo.Frame's planar methods Project / ProjectAll / Thresholds;
//   - any non-geo function with a parameter involving geo.PreparedPoint,
//     geo.Projected, or geo.Frame;
//   - any non-geo function whose name contains "prepared"/"projected".
//
// A function is a carrier — its body is exempt — when the gated types
// already arrived through its own receiver/parameters, or its name (or
// receiver type name) contains "prepared"/"projected": the gate was the
// caller's job, and the caller's call site is checked instead. The gate
// check is lexical within the enclosing top-level function (closures
// included), matching how every kernel in the tree is written.
//
// Escape hatch: //lint:ignore preparedgate <reason>.
package preparedgate

import (
	"go/ast"
	"go/types"
	"strings"

	"trajmotif/tools/internal/analysis/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "preparedgate",
	Doc:  "prepared/projected fast paths must be dominated by IsHaversine / Frame.OK gates",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Name() == "geo" {
		return nil // the gate's own implementation package
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// specialType reports whether t is one of the gated geo types.
func specialType(t types.Type) bool {
	return lint.IsNamed(t, "geo", "PreparedPoint") ||
		lint.IsNamed(t, "geo", "Projected") ||
		lint.IsNamed(t, "geo", "Frame")
}

// involves reports whether t contains a gated geo type, looking through
// containers and (to a shallow depth) struct fields.
func involves(t types.Type, depth int) bool {
	if t == nil || depth < 0 {
		return false
	}
	if specialType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return involves(u.Elem(), depth)
	case *types.Slice:
		return involves(u.Elem(), depth)
	case *types.Array:
		return involves(u.Elem(), depth)
	case *types.Map:
		return involves(u.Key(), depth) || involves(u.Elem(), depth)
	case *types.Chan:
		return involves(u.Elem(), depth)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if involves(u.Field(i).Type(), depth-1) {
				return true
			}
		}
	}
	return false
}

func nameSaysFast(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "prepared") || strings.Contains(l, "projected")
}

// isCarrier reports whether fd's own signature already carries the gated
// types (or advertises the fast path in its name), making its body the
// callee side of the contract.
func isCarrier(pass *lint.Pass, fd *ast.FuncDecl) bool {
	if nameSaysFast(fd.Name.Name) {
		return true
	}
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, f := range fields {
		t := pass.Info.Types[f.Type].Type
		if t == nil {
			continue
		}
		if involves(t, 2) {
			return true
		}
		if n := lint.Named(t); n != nil && nameSaysFast(n.Obj().Name()) {
			return true
		}
	}
	return false
}

// isGate reports whether obj is geo.IsHaversine or (geo.Frame).OK.
func isGate(obj types.Object) bool {
	if lint.IsPkgFunc(obj, "geo", "IsHaversine") {
		return true
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "OK" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return lint.IsNamed(sig.Recv().Type(), "geo", "Frame")
}

// isTarget reports whether calling obj enters a gated fast path, and a
// short label for the diagnostic.
func isTarget(obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if isGate(obj) {
		return "", false
	}
	inGeo := fn.Pkg().Name() == "geo"
	if inGeo && fn.Name() == "HaversinePrepared" {
		return "geo.HaversinePrepared", true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	// geo.Frame's planar methods.
	if inGeo && sig.Recv() != nil && lint.IsNamed(sig.Recv().Type(), "geo", "Frame") {
		switch fn.Name() {
		case "Project", "ProjectAll", "Thresholds":
			return "Frame." + fn.Name(), true
		}
		return "", false
	}
	if inGeo {
		return "", false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if involves(sig.Params().At(i).Type(), 2) {
			return fn.Name(), true
		}
	}
	if nameSaysFast(fn.Name()) {
		return fn.Name(), true
	}
	return "", false
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	if isCarrier(pass, fd) {
		return
	}
	var gates []int
	gatedBefore := func(pos int) bool {
		for _, g := range gates {
			if g < pos {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := lint.CalleeObj(pass.Info, call)
		if obj == nil {
			return true
		}
		if isGate(obj) {
			gates = append(gates, int(call.Pos()))
			return true
		}
		if label, ok := isTarget(obj); ok && !gatedBefore(int(call.Pos())) {
			pass.Reportf(call.Pos(), "call to %s without a preceding geo.IsHaversine / Frame.OK gate: the fast path is only exact under the gate", label)
		}
		return true
	})
}
