package preparedgate_test

import (
	"testing"

	"trajmotif/tools/internal/analysis/analysistest"
	"trajmotif/tools/internal/analysis/preparedgate"
)

func TestPreparedgate(t *testing.T) {
	analysistest.Run(t, preparedgate.Analyzer, "testdata", "geo", "a")
}
