// Package geo is a fixture stand-in for the repo's internal/geo: the
// analyzer matches the package by name, and skips checking inside it
// (it implements the gates themselves).
package geo

type Point struct{ Lat, Lng float64 }

type DistanceFunc func(a, b Point) float64

// PreparedPoint is a gated carrier type.
type PreparedPoint struct {
	P      Point
	CosLat float64
}

// Projected is a gated carrier type.
type Projected struct{ X, Y float64 }

// Frame is the projection frame; OK is its validity gate.
type Frame struct{ ok bool }

func (f Frame) OK() bool { return f.ok }

func (f Frame) Project(p Point) Projected { return Projected{X: p.Lng, Y: p.Lat} }

func (f Frame) Thresholds(eps float64) (float64, float64) { return eps, eps }

func Haversine(a, b Point) float64 { return 0 }

func HaversinePrepared(a, b Point, cosA, cosB float64) float64 { return 0 }

func IsHaversine(df DistanceFunc) bool { return df == nil }

func FrameFor(minLat, maxLat, minLng, maxLng float64) Frame { return Frame{ok: true} }
