package a

import "geo"

// The seeded violation: the prepared kernel without the exactness gate.
func ungated(p, q geo.Point) float64 {
	return geo.HaversinePrepared(p, q, 1, 1) // want `call to geo\.HaversinePrepared without a preceding geo\.IsHaversine / Frame\.OK gate`
}

// An IsHaversine check lexically before the call satisfies the gate.
func gated(df geo.DistanceFunc, p, q geo.Point) float64 {
	if geo.IsHaversine(df) {
		return geo.HaversinePrepared(p, q, 1, 1)
	}
	return df(p, q)
}

// lowerBound is a carrier: the prepared points arrived through its own
// parameters, so the gate was its caller's job and its body is exempt.
func lowerBound(ps []geo.PreparedPoint, q geo.Point) float64 {
	best := 0.0
	for _, pp := range ps {
		if d := geo.HaversinePrepared(pp.P, q, pp.CosLat, 1); d > best {
			best = d
		}
	}
	return best
}

func prepareAll(pts []geo.Point) []geo.PreparedPoint {
	out := make([]geo.PreparedPoint, len(pts))
	for i, p := range pts {
		out[i] = geo.PreparedPoint{P: p, CosLat: 1}
	}
	return out
}

// ...and the carrier's call sites are themselves gated targets.
func callCarrierUngated(pts []geo.Point, q geo.Point) float64 {
	ps := prepareAll(pts)
	return lowerBound(ps, q) // want `call to lowerBound without a preceding geo\.IsHaversine / Frame\.OK gate`
}

func callCarrierGated(df geo.DistanceFunc, pts []geo.Point, q geo.Point) float64 {
	if !geo.IsHaversine(df) {
		return 0
	}
	ps := prepareAll(pts)
	return lowerBound(ps, q)
}

// Frame planar methods need the frame-validity gate.
func decideUngated(minLat, maxLat, minLng, maxLng float64, p geo.Point) geo.Projected {
	f := geo.FrameFor(minLat, maxLat, minLng, maxLng)
	return f.Project(p) // want `call to Frame\.Project without a preceding geo\.IsHaversine / Frame\.OK gate`
}

func decideGated(minLat, maxLat, minLng, maxLng float64, p geo.Point) geo.Projected {
	f := geo.FrameFor(minLat, maxLat, minLng, maxLng)
	if !f.OK() {
		return geo.Projected{}
	}
	return f.Project(p)
}

// Functions advertising the fast path in their name are targets too,
// even without gated parameter types...
func rowProjected(n int) float64 { return float64(n) }

func useNameUngated(n int) float64 {
	return rowProjected(n) // want `call to rowProjected without a preceding geo\.IsHaversine / Frame\.OK gate`
}

// ...and, symmetrically, a *Prepared/*Projected name marks the enclosing
// function as a carrier, exempting its body.
func sumProjected(pts []geo.Point) float64 {
	total := 0.0
	for _, p := range pts {
		total += geo.HaversinePrepared(p, p, 1, 1)
	}
	return total
}

// The escape hatch, for gates the analyzer cannot see (e.g. enforced by
// a constructor).
func escaped(p, q geo.Point) float64 {
	//lint:ignore preparedgate the caller pinned the metric to haversine at construction
	return geo.HaversinePrepared(p, q, 1, 1)
}
