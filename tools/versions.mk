# Pinned external linter versions, kept in the tools/ module so every
# environment — dev machine and CI alike — runs identical binaries.
# Bump deliberately, never implicitly via @latest.
STATICCHECK_PKG     := honnef.co/go/tools/cmd/staticcheck
STATICCHECK_VERSION := v0.6.1
GOVULNCHECK_PKG     := golang.org/x/vuln/cmd/govulncheck
GOVULNCHECK_VERSION := v1.1.4
