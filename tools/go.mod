module trajmotif/tools

go 1.24
