// motiflint is the repo's invariant multichecker: five analyzers that
// mechanically enforce the determinism, locking, and stats contracts the
// parity tests otherwise only catch after the fact.
//
// Usage (from the tools module):
//
//	go run ./cmd/motiflint -dir .. ./...
//
// -dir points at the module to analyze (the repo root); the remaining
// arguments are package patterns resolved there. Exit status is 1 when
// any diagnostic is reported, 2 on loader/internal errors.
//
// Findings can be suppressed per line with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// either trailing the offending line or on the line above it. The reason
// is mandatory; a malformed directive is itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"

	"trajmotif/tools/internal/analysis/determinism"
	"trajmotif/tools/internal/analysis/httperr"
	"trajmotif/tools/internal/analysis/lint"
	"trajmotif/tools/internal/analysis/lockcheck"
	"trajmotif/tools/internal/analysis/preparedgate"
	"trajmotif/tools/internal/analysis/statsmerge"
)

var analyzers = []*lint.Analyzer{
	determinism.Analyzer,
	httperr.Analyzer,
	lockcheck.Analyzer,
	preparedgate.Analyzer,
	statsmerge.Analyzer,
}

func main() {
	dir := flag.String("dir", ".", "directory of the module to analyze")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motiflint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunAll(analyzers, pkgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "motiflint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "motiflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
